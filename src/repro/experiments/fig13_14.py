"""Figures 13 and 14: CDS algorithms on the three random-graph families.

SSCA (planted cliques) and R-MAT (power-law) reward core-based pruning;
ER (uniform) is the adversarial case -- its kmax-core covers almost the
whole graph, so CoreApp's advantage over PeelApp collapses.  Figure 13
runs the exact pair, Figure 14 the approximation trio.
"""

from __future__ import annotations

from ..core.core_app import core_app_densest
from ..core.core_exact import core_exact_densest
from ..core.exact import exact_densest
from ..core.inc_app import inc_app_densest
from ..core.peel import peel_densest
from ..datasets.registry import load
from .harness import timed

FAMILIES = ("SSCA", "ER", "R-MAT")


def run_exact(
    names: tuple[str, ...] = FAMILIES,
    h_values: tuple[int, ...] = (2, 3),
    scale: float = 1.0,
) -> list[dict]:
    """Figure 13: Exact vs CoreExact on random graphs."""
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            exact_result, exact_s = timed(exact_densest, graph, h)
            core_result, core_s = timed(core_exact_densest, graph, h)
            assert abs(exact_result.density - core_result.density) < 1e-6
            rows.append(
                {
                    "family": name,
                    "h": h,
                    "exact_s": exact_s,
                    "core_exact_s": core_s,
                    "speedup": exact_s / core_s if core_s > 0 else float("inf"),
                }
            )
    return rows


def run_approx(
    names: tuple[str, ...] = FAMILIES,
    h_values: tuple[int, ...] = (2, 3),
    scale: float = 1.0,
) -> list[dict]:
    """Figure 14: PeelApp / IncApp / CoreApp on random graphs.

    Also reports the kmax-core coverage, the mechanism behind ER's
    reduced speedup (the paper: 96.8% of ER sits in its kmax-core).
    """
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            _, peel_s = timed(peel_densest, graph, h)
            _, inc_s = timed(inc_app_densest, graph, h)
            app_result, app_s = timed(core_app_densest, graph, h)
            coverage = len(app_result.vertices) / graph.num_vertices
            rows.append(
                {
                    "family": name,
                    "h": h,
                    "peel_s": peel_s,
                    "inc_s": inc_s,
                    "core_app_s": app_s,
                    "speedup_vs_peel": peel_s / app_s if app_s > 0 else float("inf"),
                    "core_coverage": coverage,
                }
            )
    return rows
