"""Table 2 / Appendix-A Figure 18: dataset statistics.

For every registry surrogate: vertices, edges, connected components,
diameter, power-law exponent α, classical ``kmax`` and the size of the
(kmax, Ψ)-core for Ψ = triangle -- the exact columns of the paper's
statistics table, computed on the surrogates (paper sizes are reported
alongside for reference).
"""

from __future__ import annotations

from ..core.clique_core import clique_core_decomposition
from ..core.kcore import core_decomposition
from ..datasets.registry import dataset_names, get_spec, load
from ..graph.stats import diameter, power_law_alpha


def run(
    names: list[str] | None = None, scale: float = 1.0, triangle_core: bool = True
) -> list[dict]:
    """Compute the statistics rows.

    Parameters
    ----------
    names:
        Dataset names (default: small + synthetic categories, which the
        statistics are cheap for).
    scale:
        Surrogate scale factor.
    triangle_core:
        Whether to include the (kmax, triangle)-core columns (the most
        expensive ones).
    """
    if names is None:
        names = dataset_names("small") + dataset_names("synthetic")
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = load(name, scale)
        core = core_decomposition(graph)
        row = {
            "dataset": spec.name,
            "paper_n": spec.paper_vertices,
            "paper_m": spec.paper_edges,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "components": len(graph.connected_components()),
            "diameter": diameter(graph),
            "alpha": power_law_alpha(graph),
            "kmax": max(core.values(), default=0),
        }
        if triangle_core:
            result = clique_core_decomposition(graph, 3)
            row["tri_kmax"] = result.kmax
            row["tri_core_size"] = result.kmax_core(graph).num_vertices
        rows.append(row)
    return rows
