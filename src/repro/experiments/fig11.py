"""Figure 11: theoretical vs actual approximation ratios.

For each (dataset, h): the theoretical ratio ``T = 1/|V_Ψ| = 1/h``, the
actual ratio of CoreApp (= IncApp = Nucleus, same subgraph) and of
PeelApp against the CoreExact optimum.  The paper finds actual ratios
close to 1.0 -- far above the guarantee.
"""

from __future__ import annotations

from ..core.core_app import core_app_densest
from ..core.core_exact import core_exact_densest
from ..core.peel import peel_densest
from ..datasets.registry import load


def run(
    names: tuple[str, ...] = ("Netscience", "As-Caida"),
    h_values: tuple[int, ...] = (2, 3, 4),
    scale: float = 1.0,
) -> list[dict]:
    """One row per (dataset, h) with T and the two actual ratios."""
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            optimum = core_exact_densest(graph, h).density
            if optimum <= 0:
                continue
            core_ratio = core_app_densest(graph, h).density / optimum
            peel_ratio = peel_densest(graph, h).density / optimum
            rows.append(
                {
                    "dataset": name,
                    "h": h,
                    "theoretical": 1.0 / h,
                    "core_app_ratio": core_ratio,
                    "peel_ratio": peel_ratio,
                }
            )
    return rows
