"""Figure 9: flow-network sizes across CoreExact iterations.

The paper plots, per h-clique, the node count of each flow network
CoreExact builds: iteration "-1" is the network the plain Exact
algorithm would build on the entire graph; iteration "0" is the first
network built after core-location; subsequent iterations shrink as the
binary search tightens the lower bound.
"""

from __future__ import annotations

from ..cliques.index import CliqueIndex
from ..core.core_exact import core_exact_densest
from ..datasets.registry import load
from ..graph.graph import Graph


def _full_network_size(graph: Graph, h: int) -> int:
    """Node count of the Algorithm-1 network on the whole graph.

    Matches the index-driven builders: an (h-1)-clique only becomes a
    node if some h-clique covers it (uncovered ones cannot carry flow
    and are never created).
    """
    if h == 2:
        return graph.num_vertices + 2
    index = CliqueIndex(graph, h)
    covered = {psi for _, psi in index.member_subsets()}
    return graph.num_vertices + len(covered) + 2


def run(
    name: str = "Ca-HepTh",
    h_values: tuple[int, ...] = (2, 3, 4),
    scale: float = 1.0,
    max_iterations: int = 6,
) -> list[dict]:
    """One row per (h, iteration) with the flow-network node count."""
    graph = load(name, scale)
    rows = []
    for h in h_values:
        result = core_exact_densest(graph, h)
        sizes = result.stats["network_sizes"][: max_iterations + 1]
        rows.append(
            {"dataset": name, "h": h, "iteration": -1,
             "network_nodes": _full_network_size(graph, h)}
        )
        for i, size in enumerate(sizes):
            rows.append({"dataset": name, "h": h, "iteration": i, "network_nodes": size})
    return rows
