"""Command-line runner for the experiment artefacts.

Regenerate any paper table/figure without pytest:

    python -m repro.experiments --list
    python -m repro.experiments fig8-exact --scale 0.5
    python -m repro.experiments all --scale 0.25
"""

from __future__ import annotations

import argparse
import sys

from . import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13_14,
    fig15_16,
    fig20,
    table2,
    table3,
    table4,
    table5,
)
from .harness import print_table

_ARTEFACTS = {
    "table2": ("Table 2 / Fig 18 -- dataset statistics", lambda s: table2.run(scale=s)),
    "fig8-exact": ("Figure 8(a-e) -- exact CDS efficiency", lambda s: fig8.run_exact(scale=s)),
    "fig8-approx": ("Figure 8(f-j) -- approx CDS efficiency", lambda s: fig8.run_approx(scale=s)),
    "fig9": ("Figure 9 -- flow-network sizes per iteration", lambda s: fig9.run(scale=s)),
    "fig10": ("Figure 10 -- pruning ablation", lambda s: fig10.run(scale=s)),
    "table3": ("Table 3 -- core-decomposition time share", lambda s: table3.run(scale=s)),
    "table4": ("Table 4 -- EMcore vs CoreApp", lambda s: table4.run(scale=s)),
    "fig11": ("Figure 11 -- approximation ratios", lambda s: fig11.run(scale=s)),
    "fig12": ("Figure 12 -- CoreExact vs CoreApp", lambda s: fig12.run(scale=s)),
    "fig13": ("Figure 13 -- random graphs, exact", lambda s: fig13_14.run_exact(scale=s)),
    "fig14": ("Figure 14 -- random graphs, approx", lambda s: fig13_14.run_approx(scale=s)),
    "table5": ("Table 5 -- CDS/PDS densities vs EDS", lambda s: table5.run(scale=s)),
    "fig15": ("Figure 15 -- exact PDS efficiency", lambda s: fig15_16.run_exact(scale=s)),
    "fig16": ("Figure 16 -- approx PDS efficiency", lambda s: fig15_16.run_approx(scale=s)),
    "fig20": ("Figure 20 -- additional datasets", lambda s: fig20.run(scale=s)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on surrogate datasets.",
    )
    parser.add_argument("artefact", nargs="?", help="artefact id, or 'all'")
    parser.add_argument("--scale", type=float, default=0.25, help="surrogate scale (default 0.25)")
    parser.add_argument("--list", action="store_true", help="list artefact ids")
    args = parser.parse_args(argv)

    if args.list or not args.artefact:
        for key, (title, _) in _ARTEFACTS.items():
            print(f"{key:12s} {title}")
        return 0

    targets = list(_ARTEFACTS) if args.artefact == "all" else [args.artefact]
    for key in targets:
        if key not in _ARTEFACTS:
            print(f"unknown artefact {key!r}; use --list", file=sys.stderr)
            return 2
        title, runner = _ARTEFACTS[key]
        print_table(runner(args.scale), title=title)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
