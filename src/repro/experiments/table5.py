"""Table 5: Ψ-densities of the CDS/PDS vs the same density on the EDS.

For each dataset: ρ_opt for every clique size (and 2-star / diamond),
next to the Ψ-density evaluated on the *edge*-densest subgraph.  The
paper's point: the CDS/PDS dominates the EDS under its own density, and
on near-clique datasets the two coincide.
"""

from __future__ import annotations

from ..cliques.enumeration import count_cliques
from ..core.core_exact import core_exact_densest
from ..core.pds import core_p_exact_densest
from ..datasets.registry import load
from ..patterns.isomorphism import count_pattern_instances
from ..patterns.pattern import get_pattern


def run(
    names: tuple[str, ...] = ("S-DBLP", "Yeast", "Netscience", "As-733"),
    h_values: tuple[int, ...] = (2, 3, 4),
    patterns: tuple[str, ...] = ("2-star", "diamond"),
    scale: float = 1.0,
) -> list[dict]:
    """One row per dataset: ρ_opt and ρ(EDS, Ψ) per clique size / pattern."""
    rows = []
    for name in names:
        graph = load(name, scale)
        eds = core_exact_densest(graph, 2)
        eds_graph = graph.subgraph(eds.vertices)
        row: dict = {"dataset": name, "edge_rho_opt": eds.density}
        for h in h_values:
            if h == 2:
                continue
            result = core_exact_densest(graph, h)
            row[f"{h}clique_rho_opt"] = result.density
            row[f"{h}clique_on_EDS"] = (
                count_cliques(eds_graph, h) / eds_graph.num_vertices
                if eds_graph.num_vertices
                else 0.0
            )
        for pname in patterns:
            pattern = get_pattern(pname)
            result = core_p_exact_densest(graph, pattern)
            row[f"{pname}_rho_opt"] = result.density
            row[f"{pname}_on_EDS"] = (
                count_pattern_instances(eds_graph, pattern) / eds_graph.num_vertices
                if eds_graph.num_vertices
                else 0.0
            )
        rows.append(row)
    return rows
