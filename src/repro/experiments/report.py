"""Aggregate regenerated artefacts into a single report.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/out/``, this module stitches every artefact file into one
markdown report (used to refresh the measured sections of
EXPERIMENTS.md):

    python -m repro.experiments.report benchmarks/out report.md
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Presentation order: headline figures first, tables, then ablations.
ARTEFACT_ORDER = [
    "table2_dataset_stats",
    "fig8_exact",
    "fig8_approx",
    "fig9_flow_sizes",
    "fig10_prunings",
    "table3_decomp_share",
    "table4_emcore",
    "fig11_ratios",
    "fig12_exact_vs_app",
    "fig13_random_exact",
    "fig14_random_approx",
    "table5_densities",
    "fig15_pds_exact",
    "fig16_pds_approx",
    "fig20_additional",
    "ablation_solvers",
    "ablation_construct_plus",
    "ablation_coreapp_prefix",
    "ablation_csr",
]


def collect(out_dir: Path) -> list[tuple[str, str]]:
    """Read artefact files in presentation order; unknown files go last.

    Returns ``(name, text)`` pairs; missing artefacts are skipped.
    """
    found = {p.stem: p for p in sorted(out_dir.glob("*.txt"))}
    ordered = [name for name in ARTEFACT_ORDER if name in found]
    ordered += [name for name in found if name not in ARTEFACT_ORDER]
    return [(name, found[name].read_text(encoding="utf-8")) for name in ordered]


def render(artefacts: list[tuple[str, str]]) -> str:
    """Render artefacts as a single markdown document."""
    lines = [
        "# Regenerated evaluation artefacts",
        "",
        "One section per paper table/figure; produced by",
        "`pytest benchmarks/ --benchmark-only` (see EXPERIMENTS.md for the",
        "paper-vs-measured analysis).",
        "",
    ]
    for name, text in artefacts:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```text")
        lines.append(text.rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    out_dir = Path(args[0]) if args else Path("benchmarks/out")
    target = Path(args[1]) if len(args) > 1 else Path("benchmarks/REPORT.md")
    if not out_dir.is_dir():
        print(f"no artefact directory at {out_dir}; run the benchmarks first", file=sys.stderr)
        return 1
    artefacts = collect(out_dir)
    if not artefacts:
        print(f"no artefacts in {out_dir}", file=sys.stderr)
        return 1
    target.write_text(render(artefacts), encoding="utf-8")
    print(f"wrote {target} ({len(artefacts)} artefacts)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
