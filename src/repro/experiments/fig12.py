"""Figure 12: CoreExact vs CoreApp running time.

The paper's cost-of-exactness plot: CoreApp skips the flow phase
entirely, so it wins by a widening margin as h grows.
"""

from __future__ import annotations

from ..core.core_app import core_app_densest
from ..core.core_exact import core_exact_densest
from ..datasets.registry import load
from .harness import timed


def run(
    names: tuple[str, ...] = ("Ca-HepTh", "As-Caida"),
    h_values: tuple[int, ...] = (2, 3, 4),
    scale: float = 1.0,
) -> list[dict]:
    """One row per (dataset, h): CoreExact seconds vs CoreApp seconds."""
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            _, exact_s = timed(core_exact_densest, graph, h)
            _, app_s = timed(core_app_densest, graph, h)
            rows.append(
                {
                    "dataset": name,
                    "h": h,
                    "core_exact_s": exact_s,
                    "core_app_s": app_s,
                    "speedup": exact_s / app_s if app_s > 0 else float("inf"),
                }
            )
    return rows
