"""Table 4: EMcore vs CoreApp on the large datasets (edge cores).

Both compute the classical kmax-core; the paper reports CoreApp
consistently faster thanks to prefix doubling and the tighter
core-based bound (Section 6.2 lists the four differences).
"""

from __future__ import annotations

from ..baselines.emcore import emcore_densest
from ..core.core_app import core_app_densest
from ..datasets.registry import dataset_names, load
from .harness import timed


def run(names: list[str] | None = None, scale: float = 1.0) -> list[dict]:
    """One row per dataset: EMcore seconds, CoreApp seconds, agreement."""
    if names is None:
        names = dataset_names("large")
    rows = []
    for name in names:
        graph = load(name, scale)
        emcore_result, emcore_s = timed(emcore_densest, graph)
        coreapp_result, coreapp_s = timed(core_app_densest, graph, 2)
        assert emcore_result.stats["kmax"] == coreapp_result.stats["kmax"], (
            f"{name}: EMcore kmax {emcore_result.stats['kmax']} != "
            f"CoreApp kmax {coreapp_result.stats['kmax']}"
        )
        rows.append(
            {
                "dataset": name,
                "emcore_s": emcore_s,
                "core_app_s": coreapp_s,
                "kmax": coreapp_result.stats["kmax"],
            }
        )
    return rows
