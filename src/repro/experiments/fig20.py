"""Figure 20 (Appendix E): approximation CDS on the additional datasets.

Flickr / Google / Foursquare surrogates, approximation trio -- the
paper reports results "highly similar" to Figure 8(f)-(j), and the
expectation here is the same CoreApp-fastest ordering.
"""

from __future__ import annotations

from ..datasets.registry import dataset_names
from .fig8 import run_approx


def run(scale: float = 1.0, h_values: tuple[int, ...] = (2, 3, 4)) -> list[dict]:
    """Approximation timings on the Appendix-E datasets."""
    return run_approx(dataset_names("extra"), h_values=h_values, scale=scale, include_nucleus=False)
