"""Figure 10: individual effect of the CoreExact pruning criteria.

Variants P1, P2, P3 enable exactly one of Pruning1/2/3 (base
core-location stays on in all of them, as in the paper); the full
CoreExact enables all three.  Times are compared per h-clique size.
"""

from __future__ import annotations

from ..core.core_exact import core_exact_densest
from ..datasets.registry import load
from .harness import timed

_VARIANTS = {
    "P1": {"pruning1": True, "pruning2": False, "pruning3": False},
    "P2": {"pruning1": False, "pruning2": True, "pruning3": False},
    "P3": {"pruning1": False, "pruning2": False, "pruning3": True},
    "CoreExact": {"pruning1": True, "pruning2": True, "pruning3": True},
}


def run(
    name: str = "As-733",
    h_values: tuple[int, ...] = (2, 3, 4),
    scale: float = 1.0,
) -> list[dict]:
    """One row per h with a timing column per pruning variant."""
    graph = load(name, scale)
    rows = []
    for h in h_values:
        row: dict = {"dataset": name, "h": h}
        reference_density = None
        for label, flags in _VARIANTS.items():
            result, seconds = timed(core_exact_densest, graph, h, **flags)
            row[f"{label}_s"] = seconds
            if reference_density is None:
                reference_density = result.density
            else:
                assert abs(result.density - reference_density) < 1e-6, (
                    f"{name} h={h} {label}: density diverged"
                )
        rows.append(row)
    return rows
