"""Figures 15 and 16: PDS efficiency across the Figure-7 patterns.

Figure 15: ``PExact`` vs ``CorePExact`` (exact).  Figure 16: the
approximation trio with pattern machinery.  Starred patterns (2-star,
3-star, diamond) additionally get the Appendix-D fast degree paths in
the approximations.
"""

from __future__ import annotations

from ..core.pds import (
    core_p_exact_densest,
    p_exact_densest,
    pattern_core_app_densest,
    pattern_inc_app_densest,
    pattern_peel_densest,
)
from ..datasets.registry import load
from ..patterns.pattern import get_pattern
from .harness import timed

DEFAULT_PATTERNS = ("2-star", "3-star", "c3-star", "diamond", "2-triangle")


def run_exact(
    names: tuple[str, ...] = ("As-733", "Ca-HepTh"),
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
    scale: float = 1.0,
) -> list[dict]:
    """Figure 15: PExact vs CorePExact per pattern."""
    rows = []
    for name in names:
        graph = load(name, scale)
        for pname in patterns:
            pattern = get_pattern(pname)
            p_result, p_s = timed(p_exact_densest, graph, pattern)
            c_result, c_s = timed(core_p_exact_densest, graph, pattern)
            assert abs(p_result.density - c_result.density) < 1e-6, (
                f"{name}/{pname}: PExact {p_result.density} != CorePExact {c_result.density}"
            )
            rows.append(
                {
                    "dataset": name,
                    "pattern": pname,
                    "pexact_s": p_s,
                    "core_pexact_s": c_s,
                    "speedup": p_s / c_s if c_s > 0 else float("inf"),
                    "density": c_result.density,
                }
            )
    return rows


def run_approx(
    names: tuple[str, ...] = ("DBLP", "Cit-Patents"),
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
    scale: float = 1.0,
) -> list[dict]:
    """Figure 16: pattern PeelApp / IncApp / CoreApp per pattern."""
    rows = []
    for name in names:
        graph = load(name, scale)
        for pname in patterns:
            pattern = get_pattern(pname)
            _, peel_s = timed(pattern_peel_densest, graph, pattern)
            _, inc_s = timed(pattern_inc_app_densest, graph, pattern)
            _, app_s = timed(pattern_core_app_densest, graph, pattern)
            rows.append(
                {
                    "dataset": name,
                    "pattern": pname,
                    "peel_s": peel_s,
                    "inc_s": inc_s,
                    "core_app_s": app_s,
                }
            )
    return rows
