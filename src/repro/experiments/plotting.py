"""ASCII chart rendering for the figure-type artefacts.

The paper's efficiency figures are log-scale bar charts.  Terminal
benchmarks cannot draw pixels, so this module renders the same series
as horizontal log-scale ASCII bars -- close enough to eyeball the
orders-of-magnitude gaps the paper reports.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def _log_width(value: float, lo: float, hi: float, width: int) -> int:
    """Map ``value`` into [1, width] on a log scale over [lo, hi]."""
    if value <= 0:
        return 0
    if hi <= lo:
        return width
    position = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return max(1, min(width, round(1 + position * (width - 1))))


def bar_chart(
    series: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "s",
) -> str:
    """Render one group of labelled values as log-scale bars.

    >>> print(bar_chart({"Exact": 10.0, "CoreExact": 0.01}, width=20))  # doctest: +SKIP
    Exact      ################.... 10 s
    CoreExact  #                    0.01 s
    """
    positives = [v for v in series.values() if v > 0]
    if not positives:
        return f"{title}\n(no data)" if title else "(no data)"
    lo, hi = min(positives), max(positives)
    label_width = max(len(k) for k in series)
    lines = [title] if title else []
    for label, value in series.items():
        bar = "#" * _log_width(value, lo, hi, width)
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)} {value:.4g} {unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[dict],
    group_key: str,
    value_keys: Sequence[str],
    title: str = "",
    width: int = 40,
    unit: str = "s",
) -> str:
    """Render figure-style grouped series (one block per group value).

    ``rows`` are the experiment rows; ``group_key`` picks the x-axis
    (e.g. ``"h"``) and ``value_keys`` the series (e.g. ``["exact_s",
    "core_exact_s"]``).  All bars share one log scale so groups are
    comparable, as in the paper's figures.
    """
    values = [row[k] for row in rows for k in value_keys if row.get(k, 0) > 0]
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    lo, hi = min(values), max(values)
    label_width = max(len(k) for k in value_keys)
    lines = [title] if title else []
    for row in rows:
        lines.append(f"{group_key}={row[group_key]}")
        for key in value_keys:
            value = row.get(key)
            if value is None:
                continue
            bar = "#" * _log_width(value, lo, hi, width)
            lines.append(f"  {key.ljust(label_width)}  {bar.ljust(width)} {value:.4g} {unit}")
    return "\n".join(lines)
