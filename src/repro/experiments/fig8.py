"""Figure 8: efficiency of exact and approximation CDS algorithms.

(a)-(e): ``Exact`` vs ``CoreExact`` on the five small datasets across
h-clique sizes -- the paper's headline up-to-four-orders-of-magnitude
speedup.  (f)-(j): ``Nucleus`` vs ``PeelApp`` vs ``IncApp`` vs
``CoreApp`` on the five large datasets.

We reproduce the *shape*: CoreExact < Exact on every (dataset, h), and
CoreApp fastest among the approximations, with the gap widening on
skewed graphs.
"""

from __future__ import annotations

from ..baselines.nucleus import nucleus_densest
from ..core.core_app import core_app_densest
from ..core.core_exact import core_exact_densest
from ..core.exact import exact_densest
from ..core.inc_app import inc_app_densest
from ..core.peel import peel_densest
from ..datasets.registry import dataset_names, load
from .harness import timed

SMALL_H_VALUES = (2, 3, 4, 5)
LARGE_H_VALUES = (2, 3, 4)


def run_exact(
    names: list[str] | None = None,
    h_values: tuple[int, ...] = SMALL_H_VALUES,
    scale: float = 1.0,
    workers: int | None = None,
) -> list[dict]:
    """Figure 8(a)-(e): Exact vs CoreExact running times.

    ``workers`` threads through to both solvers (``None`` defers to
    ``REPRO_WORKERS``); the timings are genuine wall clock
    (:func:`~repro.experiments.harness.timed`), not trace-derived work
    sums, so parallel cells report elapsed time.
    """
    if names is None:
        names = dataset_names("small")
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            exact_result, exact_s = timed(exact_densest, graph, h, workers=workers)
            core_result, core_s = timed(core_exact_densest, graph, h, workers=workers)
            assert abs(exact_result.density - core_result.density) < 1e-6, (
                f"{name} h={h}: Exact {exact_result.density} != CoreExact {core_result.density}"
            )
            rows.append(
                {
                    "dataset": name,
                    "h": h,
                    "exact_s": exact_s,
                    "core_exact_s": core_s,
                    "speedup": exact_s / core_s if core_s > 0 else float("inf"),
                    "density": core_result.density,
                }
            )
    return rows


def run_approx(
    names: list[str] | None = None,
    h_values: tuple[int, ...] = LARGE_H_VALUES,
    scale: float = 1.0,
    include_nucleus: bool = True,
) -> list[dict]:
    """Figure 8(f)-(j): Nucleus / PeelApp / IncApp / CoreApp running times."""
    if names is None:
        names = dataset_names("large")
    rows = []
    for name in names:
        graph = load(name, scale)
        for h in h_values:
            peel_result, peel_s = timed(peel_densest, graph, h)
            inc_result, inc_s = timed(inc_app_densest, graph, h)
            app_result, app_s = timed(core_app_densest, graph, h)
            row = {
                "dataset": name,
                "h": h,
                "peel_s": peel_s,
                "inc_s": inc_s,
                "core_app_s": app_s,
                "speedup_vs_peel": peel_s / app_s if app_s > 0 else float("inf"),
                "core_density": app_result.density,
                "peel_density": peel_result.density,
            }
            if include_nucleus:
                _, nucleus_s = timed(nucleus_densest, graph, h)
                row["nucleus_s"] = nucleus_s
            rows.append(row)
    return rows
