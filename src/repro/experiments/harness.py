"""Shared experiment harness: timing, table rendering, algorithm maps.

Every figure/table module in :mod:`repro.experiments` produces rows as
plain dicts; this module renders them in the aligned ASCII form the
benchmark harness prints so each run regenerates the paper's artefact
as text.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from .. import obs
from ..graph.graph import Graph
from ..obs import env_fingerprint  # re-export: bench cells stamp this

__all__ = [
    "timed", "profiled", "env_fingerprint", "format_table", "print_table",
    "truncate_graph",
]


def timed(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def profiled(fn: Callable, *args, **kwargs) -> tuple[object, float, dict]:
    """Run ``fn`` under a fresh trace; return ``(result, seconds, summary)``.

    Enables the in-memory collector (clearing any prior records), runs
    the callable, and returns :func:`repro.obs.summary` alongside the
    wall time -- the hook the bench cells use to attach per-cell trace
    rollups (flow warm/cold mix, per-tier solve counts, kernel work
    counters) to their JSON artifacts.  Tracing is restored to its
    previous state afterwards, so profiled cells compose with plain
    :func:`timed` cells in one process.

    Parallel runs (``workers > 1``) merge worker spans into the trace,
    and those overlap in time: each span aggregate in the summary
    therefore reports ``total_s`` (the summed *work* across processes)
    **and** ``wall_s`` (the union of the span intervals on the shared
    monotonic timeline).  Derive elapsed-time comparisons from
    ``wall_s``; ``total_s`` under parallelism exceeds the returned
    ``seconds`` by design.
    """
    was_enabled = obs.enabled()
    obs.enable(fresh=True)
    try:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        seconds = time.perf_counter() - start
        summary = obs.summary()
    finally:
        if not was_enabled:
            obs.disable()
    return result, seconds, summary


def format_table(
    rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = ""
) -> str:
    """Render rows as an aligned text table.

    Floats print with 4 significant decimals; missing cells as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(row: dict, col: str) -> str:
        value = row.get(col, "-")
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[cell(row, c) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = ""
) -> None:
    """Print :func:`format_table` output (benchmarks call this)."""
    print()
    print(format_table(rows, columns, title))


def truncate_graph(graph: Graph, max_vertices: int) -> Graph:
    """Induced subgraph on the ``max_vertices`` highest-degree vertices.

    Used by experiments that must bound pure-Python runtimes while
    keeping the dense part of a surrogate (where the DSD action is).
    """
    if graph.num_vertices <= max_vertices:
        return graph
    keep = sorted(graph.vertices(), key=lambda v: -graph.degree(v))[:max_vertices]
    return graph.subgraph(keep)
