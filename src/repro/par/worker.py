"""Module-level worker entry points for the parallel fan-out surfaces.

Every function the pool runs must be importable by name in the worker
process (the ``par-safety`` rule enforces it), so the per-component
solver tasks live here rather than as closures inside the solvers.
Each entry takes ``(payload, shared)``: a small picklable payload dict
plus the shared-memory views (or inline arrays on the numpy-less
fallback), and returns plain picklable data -- never views into the
shared buffer.

Determinism: a component graph is rebuilt by inserting vertices in the
parent's ``labels`` order (``Graph`` adjacency is an insertion-ordered
dict, so the worker's internal id space and iteration order match the
parent's exactly) and the clique rows are the parent's canonical
subindex rows verbatim -- the flow networks built from them are
bit-identical to what the parent's serial loop would build.
"""

from __future__ import annotations

from ..graph.graph import Graph


def _as_ints(buf) -> list[int]:
    """A shared int64 view (or plain list) as a list of python ints."""
    if buf is None:
        return []
    if isinstance(buf, list):
        return [int(x) for x in buf]
    return [int(x) for x in buf.tolist()]


def rebuild_graph(labels: list, esrc, edst) -> Graph:
    """The component graph from its label list and internal-id edge arrays."""
    graph = Graph(vertices=labels)
    src = _as_ints(esrc)
    dst = _as_ints(edst)
    for i in range(len(src)):
        graph.add_edge(labels[src[i]], labels[dst[i]])
    return graph


def rebuild_index(graph: Graph, h: int, rows):
    """The component's canonical CliqueIndex from parent subindex rows."""
    if h < 3:
        return None
    from ..cliques.index import CliqueIndex

    return CliqueIndex.from_rows(graph, h, _as_ints(rows))


def solve_component(payload: dict, shared: dict) -> dict:
    """One CoreExact component subproblem (GGT walk or binary search).

    Runs :func:`repro.core.core_exact.solve_component_state` -- the same
    function the serial loop calls -- on a rebuilt component state.  A
    ``BudgetExceeded`` escapes with the component incumbent attached;
    the pool harness turns it into a degraded outcome.
    """
    from ..core.core_exact import _ComponentState, solve_component_state

    cid = payload["cid"]
    labels = payload["labels"]
    h = payload["h"]
    graph = rebuild_graph(labels, shared[f"c{cid}.esrc"], shared[f"c{cid}.edst"])
    index = rebuild_index(graph, h, shared.get(f"c{cid}.rows"))
    state = _ComponentState(graph, h, payload["flow_engine"], index=index)
    core_vals = _as_ints(shared[f"c{cid}.core"])
    core_of = {labels[i]: core_vals[i] for i in range(len(labels))}
    out = solve_component_state(
        state,
        low=payload["low"],
        kmax=payload["kmax"],
        k_locate=payload["k_locate"],
        core_of=core_of,
        pruning3=payload["pruning3"],
        n=payload["n"],
    )
    cut = out["cut"]
    return {
        "cut": list(cut) if cut is not None else None,
        "rho": out["rho"],
        "solves": out["solves"],
        "network_sizes": out["network_sizes"],
        "final_low": out["final_low"],
    }


def exact_component(payload: dict, shared: dict) -> dict:
    """One Exact (Algorithm 1) component: a GGT walk from α = 0."""
    from ..core.exact import ggt_component_walk

    cid = payload["cid"]
    labels = payload["labels"]
    h = payload["h"]
    graph = rebuild_graph(labels, shared[f"c{cid}.esrc"], shared[f"c{cid}.edst"])
    index = rebuild_index(graph, h, shared.get(f"c{cid}.rows"))
    out = ggt_component_walk(graph, h, index)
    cut = out["cut"]
    return {
        "cut": list(cut) if cut is not None else None,
        "rho": out["rho"],
        "solves": out["solves"],
        "nodes": out["nodes"],
    }


def serve_lookup(payload: dict, shared: dict) -> dict:
    """One warm density lookup over a shared breakpoint family.

    The parent ships the family as flat int64 arrays (``serve.entoff``
    segments one component's entries, ``serve.alphabits`` the breakpoint
    α values as IEEE-754 bit patterns, ``serve.counts`` / ``serve.sizes``
    each cut's exact instance count and vertex count); the query α
    arrives the same way in ``payload["alpha_bits"]``.  Every stored α
    is >= 0, and non-negative doubles order identically to their bit
    patterns as signed ints, so the right-continuous binary search
    (last entry with α_i <= α) runs on integers -- no float arithmetic
    anywhere in the worker, hence nothing to round.  Returns the global
    entry indices of the non-empty applicable cuts plus their summed
    count/size; the parent maps entries back to vertex sets.
    """
    from bisect import bisect_right

    qbits = payload["alpha_bits"]
    entoff = _as_ints(shared["serve.entoff"])
    bits = _as_ints(shared["serve.alphabits"])
    counts = _as_ints(shared["serve.counts"])
    sizes = _as_ints(shared["serve.sizes"])
    entries: list[int] = []
    count = 0
    size = 0
    for c in range(len(entoff) - 1):
        lo, hi = entoff[c], entoff[c + 1]
        if lo == hi:
            continue
        i = max(lo, bisect_right(bits, qbits, lo, hi) - 1)
        if sizes[i] == 0:
            continue
        entries.append(i)
        count += counts[i]
        size += sizes[i]
    return {"entries": entries, "count": count, "size": size}


def clique_range(payload: dict, shared: dict) -> bytes:
    """Canonical clique rows whose first vertex lies in ``[lo, hi)``.

    Returns the ``(rows × h)`` int64 array as raw bytes; the parent
    concatenates the byte strings in range order, which reproduces the
    serial kernel output exactly (rows are lexicographic, and a vertex
    range owns a contiguous slice of them).
    """
    from ..cliques import kernels

    rows = kernels.rows_for_range(
        payload["n"],
        payload["h"],
        payload["lo"],
        payload["hi"],
        shared["dptr"],
        shared["ddst"],
        shared["keys"],
    )
    return rows.tobytes()
