"""Parallel execution layer: shared-memory fan-out with serial results.

CoreExact already decomposes every instance into independent
per-component subproblems, the h=3/4 clique kernels expand disjoint
vertex ranges, and PRs 2-5 flattened all hot state (CSR adjacency,
clique rows, arc arrays) into contiguous int64 buffers.  This package
fans that independent work across a pool of **forked** worker processes
while keeping results **bit-identical to serial execution**:

* payloads are small pickles; the big buffers travel once through a
  :mod:`multiprocessing.shared_memory` arena (:mod:`repro.par.shm`);
* workers are forked, so hash seeds, imported modules and the armed
  fault plan match the parent, and every set iteration order is
  reproducible;
* the parent merges worker results by replaying the serial loop's
  order and comparisons exactly (see the solvers for the proofs), so
  densities, cuts and clique rows match the serial run bit for bit;
* the cross-cutting subsystems ride along rather than being bypassed:
  worker obs records merge into the parent trace tagged with a worker
  id, ``guard.Budget`` limits propagate as an absolute deadline plus
  remaining solve allowance (each worker receives the full remaining
  allowance -- a deliberate, documented overshoot of at most
  ``workers×`` on the solve count, never on the deadline), and accel
  tier selection / failover demotion stay per-process, reported per
  worker.

Entry points: :func:`map_components` (ordered fan-out of a module-level
function), :func:`resolve_workers` (the ``workers=`` argument /
``REPRO_WORKERS`` resolution), :func:`shutdown` (tear down cached
pools).  Serial fallbacks engage automatically with 0/1 workers, a
single payload, no fork support, or inside a worker (pools never nest).
"""

from __future__ import annotations

import importlib
import time
from typing import Callable, Optional, Sequence

from .. import env, guard, obs
from . import pool as pool_mod
from . import shm as shm_mod

__all__ = [
    "PAR_MIN_EDGES",
    "LAST_BATCH",
    "resolve_workers",
    "map_components",
    "shutdown",
]

#: Below this many edges the clique-enumeration surface stays serial:
#: fork+pickle overhead (~ms) beats the win on toy graphs, and tests on
#: tiny fixtures should not pay a pool spin-up per call.
PAR_MIN_EDGES = 4096

#: Introspection: what the most recent :func:`map_components` batch did
#: (surface, tasks, workers, failures, seconds, per-worker tiers).
#: Mutated in place, never rebound -- the ``par-safety`` rule's
#: global-state check stays clean and readers can hold a reference.
LAST_BATCH: dict = {}


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit argument over ``REPRO_WORKERS``.

    Returns at least 1 (serial).  Inside a worker process the answer is
    always 1, so fan-out never nests.
    """
    if pool_mod.IN_WORKER:
        return 1
    if workers is None:
        workers = int(env.number("REPRO_WORKERS"))
    return max(1, int(workers))


def _importable(fn: Callable) -> tuple[str, str]:
    """The ``(module, qualname)`` of a pool-safe function.

    Rejects lambdas, closures and anything else a worker could not
    re-import by name -- the same contract the ``par-safety`` lint rule
    enforces statically.
    """
    mod = getattr(fn, "__module__", None)
    qual = getattr(fn, "__qualname__", "") or ""
    if not mod or "<" in qual:
        raise TypeError(
            f"map_components needs a module-level function, got {fn!r} "
            "(lambdas and closures cannot be imported by a worker process)"
        )
    obj: object = importlib.import_module(mod)
    for part in qual.split("."):
        obj = getattr(obj, part, None)
    if obj is not fn:
        raise TypeError(
            f"map_components needs an importable module-level function; "
            f"{mod}.{qual} does not resolve back to {fn!r}"
        )
    return mod, qual


def _budget_limits() -> Optional[dict]:
    """The active budget's remaining limits, in shippable form."""
    budget = guard.ACTIVE
    if budget is None:
        return None
    limits = budget.remaining_limits()
    if not limits:
        return None
    spec = dict(limits)
    if "deadline_s" in spec:
        # ship the absolute instant: CLOCK_MONOTONIC is system-wide on
        # Linux, so the deadline means the same thing in every worker
        # no matter when its task starts
        spec["deadline_at"] = time.monotonic() + spec.pop("deadline_s")
    return spec


def _serial(fn: Callable, payloads: list, shared: dict) -> list[dict]:
    """In-process fallback: same outcome shape, no pool."""
    return [{"status": "ok", "result": fn(payload, shared)} for payload in payloads]


def map_components(
    fn: Callable,
    payloads: Sequence,
    *,
    workers: Optional[int] = None,
    shared: Optional[dict] = None,
    surface: str = "par.map",
) -> list[dict]:
    """Fan ``fn(payload, shared)`` over a worker pool; ordered outcomes.

    Parameters
    ----------
    fn:
        A module-level function (workers import it by name; lambdas and
        closures raise ``TypeError``).  Must return picklable data that
        does not alias the shared buffers.
    payloads:
        One small picklable dict (or value) per task.  Outcome ``i``
        corresponds to ``payloads[i]`` regardless of completion order.
    workers:
        Worker count; ``None`` defers to ``REPRO_WORKERS``.  Values <= 1,
        a single payload, or an unavailable fork context run serially in
        this process.
    shared:
        Named int64 arrays shipped once through a shared-memory arena
        (lists pickle inline on the numpy-less fallback).  Workers see
        read-only views under the same names.
    surface:
        Label for the ``par.batch`` telemetry event.

    Returns a list of outcome dicts: ``{"status": "ok", "result": ...}``
    or ``{"status": "budget", "degraded": {site, reason, incumbent,
    density}}`` when a worker's budget expired.  Worker crashes and
    exceptions never surface here -- the pool retries those tasks
    serially in the parent (``par.failover`` events), so a genuine
    error re-raises with its true traceback.
    """
    payloads = list(payloads)
    shared = shared if shared is not None else {}
    nworkers = resolve_workers(workers)
    if nworkers <= 1 or len(payloads) <= 1:
        return _serial(fn, payloads, shared)
    mod, qual = _importable(fn)
    pool = pool_mod.get_pool(min(nworkers, len(payloads)))
    if pool is None:
        return _serial(fn, payloads, shared)

    t0 = time.perf_counter()
    arena, header = shm_mod.create_arena(shared) if shared else (None, None)
    inline = None if header is not None else shared
    from .. import accel

    meta = {"trace": obs.ENABLED, "budget": _budget_limits(), "tier": accel.TIER}
    try:
        outcomes, failures = pool.run_batch(
            fn, mod, qual, payloads, header, inline, shared, meta
        )
    finally:
        shm_mod.destroy(arena)
        if not pool.healthy:
            pool.close()  # a fresh pool forks lazily on the next batch

    solves = 0
    tiers: list[str] = []
    for outcome in outcomes:
        solves += outcome.get("solves", 0) or 0
        tier = outcome.get("tier")
        if tier and tier not in tiers:
            tiers.append(tier)
        if obs.ENABLED and outcome.get("records"):
            obs.merge_child_records(
                outcome["records"], outcome.get("counters", {}), outcome.get("worker", 0)
            )
    if solves and guard.ACTIVE is not None:
        guard.ACTIVE.absorb_child(solves)
    seconds = time.perf_counter() - t0
    obs.event(
        "par.batch",
        surface=surface,
        tasks=len(payloads),
        workers=pool.nworkers,
        failures=failures,
        seconds=seconds,
    )
    obs.counter("par.batches")
    LAST_BATCH.clear()
    LAST_BATCH.update(
        surface=surface,
        tasks=len(payloads),
        workers=pool.nworkers,
        failures=failures,
        seconds=seconds,
        tiers=tiers,
    )
    return [_strip(outcome) for outcome in outcomes]


def _strip(outcome: dict) -> dict:
    if outcome.get("status") == "budget":
        return {"status": "budget", "degraded": outcome.get("degraded")}
    return {"status": "ok", "result": outcome.get("result")}


def shutdown() -> None:
    """Tear down every cached worker pool (idempotent).

    Call after arming a new fault plan so freshly forked workers
    inherit it, or to release processes early; pools re-fork lazily.
    """
    pool_mod.shutdown_all()
