"""Shared-memory arenas: zero-copy transport of flat int64 buffers.

The hot state the solvers fan out -- edge lists, canonical clique rows,
CSR adjacency -- already lives in contiguous ``int64`` numpy arrays
(PRs 2-5 flattened it on purpose).  An *arena* packs a named set of
such arrays into one :class:`multiprocessing.shared_memory.SharedMemory`
segment; workers attach read-only views by name and offset, so a batch
of tasks ships kilobyte-sized pickled payloads while the megabyte-sized
buffers cross the process boundary exactly once, copy-free.

Layout: the parent concatenates the fields back to back and sends a
small ``header`` dict (segment name + per-field ``(offset, length)``)
over the task pipe.  Workers call :func:`attach`; the parent calls
:func:`destroy` once the batch completes.

Two sharp edges this module owns:

* ``resource_tracker`` double-accounting (cpython issue 82300): on
  POSIX every ``SharedMemory`` open -- attach included -- registers the
  segment with the tracker.  Workers are *forked*, so parent and
  children share one tracker process whose cache is a **set**: the
  duplicate registrations collapse to the parent's single entry, which
  :func:`destroy`'s unlink consumes.  The pool starts the tracker
  *before* forking for exactly this reason -- a child whose first
  attach has to spawn its own tracker would keep a private registration
  no unlink ever clears.  Children therefore must *not*
  unregister on detach (that would strip the parent's entry and make
  the final unlink warn), and must never unlink.
* ``BufferError`` on close: a ``SharedMemory`` segment cannot close
  while numpy views of its buffer are alive, so :func:`release` drops
  the views first and tolerates stragglers.
"""

from __future__ import annotations

from typing import Optional

try:  # gated exactly like the kernels: numpy may be absent
    from .. import env as _env

    if _env.flag("REPRO_NO_NUMPY"):
        np = None
    else:
        import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    np = None

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - minimal platforms
    shared_memory = None  # type: ignore[assignment]


def available() -> bool:
    """Whether shared-memory transport can be used at all."""
    return np is not None and shared_memory is not None


def create_arena(fields: dict) -> tuple[Optional[object], Optional[dict]]:
    """Pack named int64 arrays into one shared segment.

    Returns ``(shm, header)``; both are ``None`` when shared memory is
    unavailable or every field is empty (callers fall back to inline
    pickling).  The header is picklable and self-describing:
    ``{"name": segment, "fields": {key: (offset, length)}}`` with
    lengths in elements, not bytes.
    """
    if not available():
        return None, None
    total = sum(int(a.size) for a in fields.values())
    if total == 0:
        return None, None
    shm = shared_memory.SharedMemory(create=True, size=max(1, total * 8))
    layout: dict[str, tuple[int, int]] = {}
    offset = 0
    for key, arr in fields.items():
        flat = np.ascontiguousarray(arr, dtype=np.int64).reshape(-1)
        view = np.ndarray((flat.size,), dtype=np.int64, buffer=shm.buf, offset=offset * 8)
        view[:] = flat
        layout[key] = (offset, int(flat.size))
        offset += int(flat.size)
        del view
    return shm, {"name": shm.name, "fields": layout}


def attach(header: dict) -> tuple[object, dict]:
    """Attach to an arena created by :func:`create_arena`.

    Returns ``(shm, views)`` where ``views`` maps field name to a
    read-only int64 array aliasing the shared buffer.  The caller must
    hand both to :func:`release` when done.
    """
    # Attaching registers the segment with the fork-shared resource
    # tracker a second time; the tracker's cache is a set, so this is
    # idempotent and the parent's unlink unregisters the single entry.
    shm = shared_memory.SharedMemory(name=header["name"])
    views = {}
    for key, (offset, length) in header["fields"].items():
        view = np.ndarray((length,), dtype=np.int64, buffer=shm.buf, offset=offset * 8)
        view.flags.writeable = False
        views[key] = view
    return shm, views


def release(shm: object, views: Optional[dict]) -> None:
    """Drop a worker's views and close its attachment (never unlinks)."""
    if views is not None:
        views.clear()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a straggler view still alive
        pass


def destroy(shm: Optional[object]) -> None:
    """Parent-side teardown: close and unlink the segment."""
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already reaped
        pass
