"""Forked worker pool with demand-driven dispatch and serial failover.

The pool is deliberately lower-level than ``multiprocessing.Pool``:

* **fork only.**  Workers are forked, never spawned, so they inherit
  the parent's hash seed (set iteration orders match), its imported
  modules, and its armed fault plan.  Platforms without fork get the
  serial fallback in :func:`repro.par.map_components`.
* **demand-driven dispatch.**  One task is in flight per worker; the
  next is sent only after its reply arrives.  Flooding the task pipe
  can deadlock once replies outgrow the OS pipe buffer (worker blocks
  on send, stops draining input, parent blocks on send), so the parent
  multiplexes replies with :func:`multiprocessing.connection.wait`.
* **serial failover.**  A worker that dies mid-task (crash, injected
  ``par.worker`` fault) or replies with an error surfaces as a
  ``par.failover`` event and the task re-runs *in the parent* with the
  real function -- bit-identical by construction, and a genuine worker
  exception re-raises with its true traceback.  Unsent tasks of a dead
  worker are redistributed to the survivors.

Worker bootstrap (:func:`_worker_main`) is the one place in this
package allowed to touch module-global state (the ``par-safety`` lint
rule whitelists :data:`WORKER_INIT_FUNCS`): it marks the process as a
worker, drops inherited parent-side handles (pool registry, obs sink,
active budget) and then serves tasks until the ``None`` sentinel.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import time
from collections import deque
from typing import Callable, Optional

from .. import guard, obs
from ..guard import faults
from . import shm as shm_mod

#: Functions allowed to mutate module-global state in this package --
#: the worker bootstrap path the ``par-safety`` rule recognises.
WORKER_INIT_FUNCS = ("_worker_main",)

#: True in a forked worker process: ``resolve_workers`` collapses to
#: serial there, so pools never nest.
IN_WORKER = False

#: Live pools keyed by worker count.  Mutated in place only (the
#: ``par-safety`` rule flags rebinding); emptied atexit.
_POOLS: dict[int, "WorkerPool"] = {}


def _resolve(mod: str, qual: str) -> Callable:
    """Import ``mod`` and walk ``qual`` to the module-level callable."""
    obj = importlib.import_module(mod)
    for part in qual.split("."):
        obj = getattr(obj, part)
    return obj


def _localize(limits: dict) -> dict:
    """Turn the parent's shipped budget limits into Budget kwargs.

    ``deadline_at`` is an absolute ``time.monotonic`` reading -- on
    Linux CLOCK_MONOTONIC is system-wide, so the parent's deadline
    instant means the same thing in the worker, however late this task
    starts.
    """
    kwargs: dict = {}
    if "deadline_at" in limits:
        kwargs["deadline_s"] = max(0.0, limits["deadline_at"] - time.monotonic())
    if limits.get("max_solves") is not None:
        kwargs["max_solves"] = limits["max_solves"]
    if limits.get("max_arcs") is not None:
        kwargs["max_arcs"] = limits["max_arcs"]
    return kwargs


def _run_task(wid: int, msg: tuple) -> dict:
    """Execute one task message; always returns a reply dict."""
    task_id, mod, qual, payload, header, inline_shared, meta = msg
    from .. import accel

    arena = None
    views: Optional[dict] = None
    try:
        fn = _resolve(mod, qual)
        if header is not None:
            arena, views = shm_mod.attach(header)
            shared = views
        else:
            shared = dict(inline_shared or {})
        tier = meta.get("tier")
        if tier and accel.TIER != tier:
            try:
                accel.select_tier(tier)
            except Exception:
                pass  # tier unavailable here: accel keeps its own fallback
        tracing = bool(meta.get("trace"))
        if tracing:
            obs.enable(fresh=True)
        status = "ok"
        result = None
        degraded = None
        solves = 0
        try:
            limits = meta.get("budget")
            if limits:
                budget = guard.Budget(**_localize(limits))
                try:
                    with budget:
                        result = fn(payload, shared)
                finally:
                    solves = budget.solves
            else:
                result = fn(payload, shared)
        except guard.BudgetExceeded as exc:
            status = "budget"
            degraded = {
                "site": exc.site,
                "reason": exc.reason,
                "incumbent": sorted(exc.incumbent, key=repr)
                if exc.incumbent is not None
                else None,
                "density": exc.incumbent_density,
            }
        records: list = []
        counters: dict = {}
        if tracing:
            coll = obs.get_collector()
            records = list(coll.records)
            counters = dict(coll.counters)
            obs.disable()
            obs.reset()
        return {
            "status": status,
            "task": task_id,
            "worker": wid,
            "result": result,
            "degraded": degraded,
            "solves": solves,
            "records": records,
            "counters": counters,
            "tier": accel.TIER,
        }
    except Exception as exc:
        return {"status": "err", "task": task_id, "worker": wid, "error": repr(exc)}
    finally:
        if views is not None:
            shm_mod.release(arena, views)


def _worker_main(conn, wid: int) -> None:
    """Worker process entry: serve tasks until the ``None`` sentinel."""
    global IN_WORKER
    IN_WORKER = True
    # Inherited parent-side state is not ours: the pool registry holds
    # the parent's pipe ends, the obs sink is the parent's open file,
    # and a Budget the parent entered before forking binds the parent.
    _POOLS.clear()
    obs.detach_sink()
    obs.disable()
    obs.reset()
    guard.ACTIVE = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        try:
            # chaos hook: an armed ``par.worker`` plan simulates a crash
            # (exit without replying -> the parent sees EOF and fails over)
            faults.maybe_raise("par.worker", "proc")
        except faults.InjectedFault:
            break
        reply = _run_task(wid, msg)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class WorkerPool:
    """A fixed set of forked workers connected by duplex pipes."""

    __slots__ = ("nworkers", "procs", "conns", "alive")

    def __init__(self, nworkers: int):
        ctx = multiprocessing.get_context("fork")
        if shm_mod.available():
            # The arena invariant (see shm.py) is that parent and
            # children share ONE resource tracker, so attach-time
            # registrations collapse into the single set entry the
            # parent's unlink consumes.  That only holds if the tracker
            # exists before the fork -- otherwise each child's first
            # attach spawns a private tracker that outlives the batch
            # and warns about the parent-unlinked segment at exit.
            from multiprocessing import resource_tracker

            try:
                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker-less platform
                pass
        self.nworkers = nworkers
        self.procs: list = []
        self.conns: list = []
        self.alive: list[bool] = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, wid),
                daemon=True,
                name=f"repro-par-{wid}",
            )
            proc.start()
            # closed immediately so a worker's death EOFs its pipe (and
            # later-forked siblings never inherit this write end)
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)
            self.alive.append(True)

    @property
    def healthy(self) -> bool:
        return all(self.alive)

    def run_batch(
        self,
        fn: Callable,
        mod: str,
        qual: str,
        payloads: list,
        header: Optional[dict],
        inline_shared: Optional[dict],
        shared_local: dict,
        meta: dict,
    ) -> tuple[list, int]:
        """Fan ``payloads`` over the workers; ordered replies + failover count."""
        from multiprocessing.connection import wait

        ntasks = len(payloads)
        outcomes: list = [None] * ntasks
        pending: list[deque] = [deque() for _ in range(self.nworkers)]
        inflight: list[Optional[int]] = [None] * self.nworkers
        failures = 0
        for tid in range(ntasks):
            pending[tid % self.nworkers].append(tid)

        def retry_serial(tid: int, wid: int, error: str) -> None:
            nonlocal failures
            failures += 1
            obs.event("par.failover", task=tid, worker=wid, error=error)
            obs.counter("par.failover")
            outcomes[tid] = {
                "status": "ok",
                "task": tid,
                "worker": wid,
                "result": fn(payloads[tid], shared_local),
                "solves": 0,
                "records": [],
                "counters": {},
                "retried": True,
            }

        def reassign(wid: int) -> None:
            """Move a dead worker's unsent queue to the survivors."""
            leftovers = pending[wid]
            pending[wid] = deque()
            targets = [w for w in range(self.nworkers) if self.alive[w]]
            if not targets:
                while leftovers:
                    retry_serial(leftovers.popleft(), wid, "pool exhausted")
                return
            for i, tid in enumerate(leftovers):
                pending[targets[i % len(targets)]].append(tid)

        def on_death(wid: int, error: str) -> None:
            self.alive[wid] = False
            try:
                self.conns[wid].close()
            except OSError:  # pragma: no cover
                pass
            tid = inflight[wid]
            inflight[wid] = None
            if tid is not None:
                retry_serial(tid, wid, error)
            reassign(wid)

        try:
            while True:
                for wid in range(self.nworkers):
                    while self.alive[wid] and inflight[wid] is None and pending[wid]:
                        tid = pending[wid].popleft()
                        msg = (tid, mod, qual, payloads[tid], header, inline_shared, meta)
                        try:
                            self.conns[wid].send(msg)
                            inflight[wid] = tid
                        except (BrokenPipeError, OSError) as exc:
                            pending[wid].appendleft(tid)
                            on_death(wid, f"send failed: {exc!r}")
                waiting = [
                    self.conns[w]
                    for w in range(self.nworkers)
                    if self.alive[w] and inflight[w] is not None
                ]
                if not waiting:
                    if any(self.alive[w] and pending[w] for w in range(self.nworkers)):
                        continue  # reassigned work for an earlier idle worker
                    break
                for conn in wait(waiting):
                    wid = self.conns.index(conn)
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError) as exc:
                        on_death(wid, f"worker exited: {exc!r}")
                        continue
                    tid = inflight[wid]
                    inflight[wid] = None
                    if reply.get("status") == "err":
                        # a real exception: replay in the parent so it
                        # either re-raises with a true traceback or
                        # proves the failure was transient
                        retry_serial(tid, wid, reply.get("error", "worker error"))
                    else:
                        outcomes[tid] = reply
        except BaseException:
            self.close()
            raise
        for tid in range(ntasks):  # pragma: no cover - scheduler safety net
            if outcomes[tid] is None:
                retry_serial(tid, 0, "scheduler fallthrough")
        for wid in range(self.nworkers):
            if not self.alive[wid]:
                self.procs[wid].join(timeout=0.5)
        return outcomes, failures

    def close(self) -> None:
        """Send the shutdown sentinel, close pipes, reap the processes."""
        if _POOLS.get(self.nworkers) is self:
            del _POOLS[self.nworkers]
        for wid, conn in enumerate(self.conns):
            if self.alive[wid]:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self.alive[wid] = False
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self.procs:
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)


def get_pool(nworkers: int) -> Optional[WorkerPool]:
    """A healthy cached pool of ``nworkers``, or None when unavailable."""
    if IN_WORKER or nworkers <= 1:
        return None
    pool = _POOLS.get(nworkers)
    if pool is not None:
        if pool.healthy:
            return pool
        pool.close()
    try:
        pool = WorkerPool(nworkers)
    except (ValueError, OSError):  # no fork / fd or process limits
        return None
    _POOLS[nworkers] = pool
    return pool


def shutdown_all() -> None:
    """Tear down every cached pool (idempotent; registered atexit)."""
    for pool in list(_POOLS.values()):
        pool.close()


atexit.register(shutdown_all)
