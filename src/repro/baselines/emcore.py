"""EMcore baseline (Cheng et al., ICDE'11), adapted to main memory.

EMcore decomposes classical k-cores top-down, processing vertices in
blocks of decreasing degree.  The paper adapts it to main memory,
stops it as soon as the kmax-core is known, and compares it against
CoreApp for the EDS case (Table 4), listing four differences:
edge-cores only, fixed block growth instead of prefix doubling, a
degree-based (not core-based) upper bound, and O(kmax (n+m)) worst
case.

This adaptation keeps the block-wise top-down structure but runs one
full O(n+m) decomposition per block instead of Cheng et al.'s
level-wise passes -- a *stronger* baseline than the paper compares
against (EXPERIMENTS.md, Table-4 section, discusses the consequence).
"""

from __future__ import annotations

from ..core.exact import DensestSubgraphResult
from ..core.kcore import core_decomposition
from ..graph.graph import Graph, Vertex


def emcore_kmax_core(graph: Graph, block_size: int = 1024) -> tuple[int, set[Vertex]]:
    """Compute ``(kmax, kmax-core vertices)`` top-down, EMcore style.

    Vertices are sorted by degree (the EMcore upper bound on the core
    number); blocks of ``block_size`` vertices are appended to the
    working set, whose induced subgraph is fully decomposed each round.
    The search stops when every vertex outside the working set has
    degree below the best core number found.
    """
    n = graph.num_vertices
    if n == 0:
        return 0, set()
    ordered = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    kmax = 0
    best: set[Vertex] = set()
    size = min(block_size, n)
    while True:
        working = graph.subgraph(ordered[:size])
        core = core_decomposition(working)
        local_kmax = max(core.values(), default=0)
        if local_kmax >= kmax and local_kmax > 0:
            # >= so a later (larger) working set refreshes the core with
            # any additional members it reveals at the same level
            kmax = local_kmax
            best = {v for v, c in core.items() if c >= local_kmax}
        if size >= n:
            break
        if graph.degree(ordered[size]) < kmax:
            break
        size = min(size + block_size, n)
    return kmax, best


def emcore_densest(graph: Graph) -> DensestSubgraphResult:
    """The EMcore baseline for Table 4: kmax-core as an EDS approximation."""
    kmax, vertices = emcore_kmax_core(graph)
    if not vertices:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "EMcore")
    sub = graph.subgraph(vertices)
    return DensestSubgraphResult(
        vertices=vertices,
        density=sub.edge_density(),
        method="EMcore",
        stats={"kmax": kmax},
    )
