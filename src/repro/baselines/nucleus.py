"""Nucleus-decomposition baseline (Sariyüce, Seshadhri & Pinar, PVLDB'18).

When Ψ is an h-clique, the (k, Ψ)-core coincides with the k-(1, h)
nucleus (Section 5.4).  The paper benchmarks its Algorithm-3 peeling
against the *local* nucleus decomposition ("AND"): every vertex
iterates the h-index operator over the minimum current estimate of each
clique instance it belongs to, converging to the clique-core numbers
from above.

This is an independent second implementation of the same quantity,
which makes it both the Figure-8 ``Nucleus`` baseline and a
differential-testing oracle for :mod:`repro.core.clique_core`.
"""

from __future__ import annotations

from ..cliques.enumeration import CliqueIndex
from ..graph.graph import Graph, Vertex
from ..core.exact import DensestSubgraphResult
from ..cliques.enumeration import count_cliques


def _h_index(values: list[int]) -> int:
    """Largest k such that at least k of ``values`` are >= k."""
    values = sorted(values, reverse=True)
    h = 0
    for i, v in enumerate(values, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


def nucleus_core_numbers(graph: Graph, h: int, max_rounds: int | None = None) -> dict[Vertex, int]:
    """Clique-core numbers via asynchronous h-index iteration.

    Starts every estimate at the clique-degree (a valid upper bound)
    and repeatedly replaces it with the h-index of
    ``min over co-members`` per instance, processing only vertices whose
    neighbourhood changed (the AND work-queue).  Converges to the same
    fixpoint as Algorithm-3 peeling.

    Parameters
    ----------
    max_rounds:
        Optional safety cap on sweeps; ``None`` runs to convergence.
    """
    if h < 2:
        raise ValueError("h must be >= 2")
    index = CliqueIndex(graph, h)
    if not index.vertices:
        return {}
    estimate = list(index.base_degree)
    inst, inc_start, inc_ids = index.inst, index.inc_start, index.inc_ids

    dirty = set(range(len(index.vertices)))
    rounds = 0
    while dirty:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        next_dirty: set[int] = set()
        for vid in dirty:
            lo, hi = inc_start[vid], inc_start[vid + 1]
            if lo == hi:
                estimate[vid] = 0
                continue
            support = [
                min(
                    estimate[uid]
                    for uid in inst[inc_ids[pos] * h : inc_ids[pos] * h + h]
                    if uid != vid
                )
                for pos in range(lo, hi)
            ]
            new = _h_index(support)
            if new < estimate[vid]:
                estimate[vid] = new
                # a drop can lower the h-index of every co-member
                for pos in range(lo, hi):
                    iid = inc_ids[pos]
                    next_dirty.update(
                        uid for uid in inst[iid * h : iid * h + h] if uid != vid
                    )
        dirty = next_dirty
    return {v: estimate[i] for i, v in enumerate(index.vertices)}


def nucleus_densest(graph: Graph, h: int = 2) -> DensestSubgraphResult:
    """The Nucleus baseline: (kmax, Ψ)-core via nucleus decomposition.

    Returns the same subgraph as IncApp/CoreApp (the paper notes the
    three share their output), so Figure 8 compares only running time.
    """
    if graph.num_vertices == 0:
        return DensestSubgraphResult(set(), 0.0, "Nucleus")
    core = nucleus_core_numbers(graph, h)
    kmax = max(core.values(), default=0)
    if kmax == 0:
        return DensestSubgraphResult(set(graph.vertices()), 0.0, "Nucleus")
    vertices = {v for v, c in core.items() if c >= kmax}
    sub = graph.subgraph(vertices)
    density = count_cliques(sub, h) / sub.num_vertices
    return DensestSubgraphResult(
        vertices=vertices, density=density, method="Nucleus", stats={"kmax": kmax}
    )
