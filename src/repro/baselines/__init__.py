"""Baselines the paper compares against: Nucleus and EMcore."""

from .emcore import emcore_densest, emcore_kmax_core
from .nucleus import nucleus_core_numbers, nucleus_densest

__all__ = ["emcore_densest", "emcore_kmax_core", "nucleus_core_numbers", "nucleus_densest"]
